// Package config defines the hardware and policy configuration space the
// paper explores, plus presets matching its section 5.2 methodology. It has
// no dependencies so every subsystem can import it.
package config

import (
	"fmt"
	"strings"
)

// SchedulerPolicy selects the warp scheduler.
type SchedulerPolicy uint8

const (
	// SchedLRR is loose round-robin, the paper's baseline scheduler.
	SchedLRR SchedulerPolicy = iota
	// SchedGTO is greedy-then-oldest, a common alternative baseline.
	SchedGTO
	// SchedCCWS is cache-conscious wavefront scheduling (Rogers et al.),
	// with cache-line victim tag arrays (paper section 7.1).
	SchedCCWS
	// SchedTACCWS is TLB-aware CCWS: lost-locality scores weight cache
	// misses accompanied by TLB misses more heavily (section 7.2).
	SchedTACCWS
	// SchedTCWS is TLB-conscious warp scheduling: VTAs hold virtual page
	// tags, probed on TLB misses, with LRU-depth-weighted score updates
	// on TLB hits (section 7.2).
	SchedTCWS
)

// String implements fmt.Stringer.
func (p SchedulerPolicy) String() string {
	switch p {
	case SchedLRR:
		return "lrr"
	case SchedGTO:
		return "gto"
	case SchedCCWS:
		return "ccws"
	case SchedTACCWS:
		return "ta-ccws"
	case SchedTCWS:
		return "tcws"
	}
	return fmt.Sprintf("sched(%d)", p)
}

// DivergenceMode selects branch divergence handling.
type DivergenceMode uint8

const (
	// DivStack is the classic per-warp reconvergence stack.
	DivStack DivergenceMode = iota
	// DivTBC is thread block compaction (Fung & Aamodt), TLB-agnostic.
	DivTBC
	// DivTLBTBC is the paper's TLB-aware TBC with CPM-gated compaction.
	DivTLBTBC
)

// String implements fmt.Stringer.
func (d DivergenceMode) String() string {
	switch d {
	case DivStack:
		return "stack"
	case DivTBC:
		return "tbc"
	case DivTLBTBC:
		return "tlb-tbc"
	}
	return fmt.Sprintf("div(%d)", d)
}

// MMU configures the per-core TLB and page table walkers: the paper's
// design space (section 6.1).
type MMU struct {
	// Enabled false gives the paper's no-TLB baseline: translation is
	// functionally correct but costs zero cycles.
	Enabled bool

	Entries int // total TLB entries (64..512 in the paper)
	Assoc   int // set associativity (paper assumes 4-way)
	Ports   int // lookups the TLB can start per cycle (3..32)

	// IdealLatency disables the CACTI-style access-time penalty so the
	// "impractical ideal" 512-entry 32-port configuration can be modelled.
	IdealLatency bool

	// HitsUnderMiss allows other warps' TLB hits while misses are pending
	// (first non-blocking augmentation, section 6.3).
	HitsUnderMiss bool
	// CacheOverlap lets lanes that hit in the TLB access the L1 without
	// waiting for the warp's outstanding walks (second augmentation).
	CacheOverlap bool
	// PTWSched enables the coalescing page-table-walk scheduler
	// (comparator-tree batching, section 6.3).
	PTWSched bool

	NumPTWs int // hardware walkers per core (paper: 1 baseline, up to 8)
	MSHRs   int // TLB miss-status registers per core (paper: 32)

	// SharedTLBEntries, when nonzero, adds a chip-level shared L2 TLB of
	// that many entries (4-way) probed on per-core misses before walking —
	// an extension in the paper's section 10 follow-up direction.
	SharedTLBEntries int
	// SharedTLBLatency is the round-trip cost of probing the shared tier.
	SharedTLBLatency int

	// PWCEntries, when nonzero, gives each walker a page walk cache of
	// that many entries holding upper-level PTEs (PML4/PDP/PD), skipping
	// their memory references on a hit — the translation-caching direction
	// of Barr et al. (ISCA 2010), an extension beyond the paper's designs.
	PWCEntries int

	// SoftwareWalks services TLB misses by interrupting execution and
	// running an OS handler instead of using hardware walkers — the
	// section 6.1 design option the paper rejects. Each walk pays
	// SoftwareWalkOverhead cycles on top of its memory references, and the
	// TLB behaves as fully blocking regardless of HitsUnderMiss.
	SoftwareWalks        bool
	SoftwareWalkOverhead int

	// WalkConcurrency is how many outstanding walks one hardware walker
	// pipelines (walk state registers). The paper's quantitative results
	// (figure 2's 20-50% degradations at 22-70% miss rates, figure 4's
	// ~2x miss penalty) are only reachable if a walker overlaps a few
	// walks; fully serial walkers would saturate and produce far deeper
	// losses. 4 reproduces the paper's operating point. See DESIGN.md.
	WalkConcurrency int
}

// Ideal returns the impractical reference TLB the paper compares against:
// 512 entries, 32 ports, no access-latency penalty, fully augmented.
func (m MMU) Ideal() MMU {
	m.Enabled = true
	m.Entries = 512
	m.Ports = 32
	m.IdealLatency = true
	m.HitsUnderMiss = true
	m.CacheOverlap = true
	m.PTWSched = true
	if m.Assoc == 0 {
		m.Assoc = 4
	}
	if m.NumPTWs == 0 {
		m.NumPTWs = 1
	}
	if m.MSHRs == 0 {
		m.MSHRs = 32
	}
	if m.WalkConcurrency == 0 {
		m.WalkConcurrency = 4
	}
	return m
}

// AccessPenalty returns the extra cycles a TLB of this size adds to every
// L1 access (translation must complete by set-select time). The numbers
// follow the paper's CACTI finding: 128 entries is the largest size that
// does not slow a 32 KB L1 down.
func (m MMU) AccessPenalty() int {
	if !m.Enabled || m.IdealLatency {
		return 0
	}
	switch {
	case m.Entries <= 128:
		return 0
	case m.Entries <= 256:
		return 4
	default:
		return 8
	}
}

// Key returns a canonical string covering every MMU field. Two MMU values
// have equal keys if and only if they are semantically identical; the
// experiment executor dedupes runs by it, so it must never alias distinct
// configurations. Keep in sync with the struct (TestHardwareKeyCoversEveryField
// fails if a field is added but not folded in here).
func (m MMU) Key() string {
	return fmt.Sprintf("mmu:on=%t,e=%d,a=%d,p=%d,ideal=%t,hum=%t,ovl=%t,ptws=%t,nptw=%d,mshr=%d,stlb=%d,stlblat=%d,pwc=%d,sw=%t,swov=%d,wc=%d",
		m.Enabled, m.Entries, m.Assoc, m.Ports, m.IdealLatency,
		m.HitsUnderMiss, m.CacheOverlap, m.PTWSched, m.NumPTWs, m.MSHRs,
		m.SharedTLBEntries, m.SharedTLBLatency, m.PWCEntries,
		m.SoftwareWalks, m.SoftwareWalkOverhead, m.WalkConcurrency)
}

// Scheduler configures warp scheduling and the CCWS family.
type Scheduler struct {
	Policy SchedulerPolicy

	// VTAEntriesPerWarp and VTAAssoc size the victim tag arrays
	// (paper: 16-entry, 8-way for CCWS; TCWS sweeps 2..16).
	VTAEntriesPerWarp int
	VTAAssoc          int

	// LLSCutoff is the lost-locality score sum beyond which the
	// scheduling pool is restricted.
	LLSCutoff int
	// ActivePool is how many top-scoring warps stay schedulable while
	// restricted.
	ActivePool int
	// DecayPeriod halves all scores every this many cycles so throttling
	// releases when locality recovers.
	DecayPeriod int

	// TLBMissWeight is TA-CCWS's x in x:1 weighting of cache misses that
	// carry TLB misses (power of two; 1 disables the distinction).
	TLBMissWeight int

	// LRUDepthWeights are TCWS's per-LRU-depth score increments on TLB
	// hits (e.g. {1,2,4,8}); nil disables hit-based updates.
	LRUDepthWeights []int
}

// Key returns a canonical string covering every Scheduler field (see
// MMU.Key for the contract).
func (s Scheduler) Key() string {
	var w strings.Builder
	fmt.Fprintf(&w, "sched:pol=%d,vta=%d,vtaa=%d,lls=%d,pool=%d,decay=%d,tlbw=%d,lru=[",
		s.Policy, s.VTAEntriesPerWarp, s.VTAAssoc, s.LLSCutoff,
		s.ActivePool, s.DecayPeriod, s.TLBMissWeight)
	for i, d := range s.LRUDepthWeights {
		if i > 0 {
			w.WriteByte(' ')
		}
		fmt.Fprintf(&w, "%d", d)
	}
	w.WriteByte(']')
	return w.String()
}

// TBC configures thread block compaction.
type TBC struct {
	Mode DivergenceMode

	// CPMBits is the width of the Common Page Matrix saturating counters
	// (1..3 in the paper's figure 22).
	CPMBits int
	// CPMFlushPeriod is how often the CPM is cleared (paper: 500 cycles).
	CPMFlushPeriod int
	// CPMHistory is the per-TLB-entry warp history length (paper: 2).
	CPMHistory int
}

// Key returns a canonical string covering every TBC field (see MMU.Key for
// the contract).
func (t TBC) Key() string {
	return fmt.Sprintf("tbc:mode=%d,cpm=%d,flush=%d,hist=%d",
		t.Mode, t.CPMBits, t.CPMFlushPeriod, t.CPMHistory)
}

// Hardware is the full machine configuration.
type Hardware struct {
	NumCores     int // shader cores (paper: 30)
	WarpsPerCore int // concurrent warps per core (paper: 48)
	WarpWidth    int // threads per warp (paper: 32)
	IssueWidth   int // SIMD pipeline width in lanes (paper: 8); a 32-thread
	// warp instruction occupies the issue stage for WarpWidth/IssueWidth
	// cycles, capping per-core issue throughput the way GPGPU-Sim does

	// L1 data cache (virtually indexed, physically tagged).
	L1Bytes    int // paper: 32 KB
	L1LineSize int // paper: 128 B
	L1Assoc    int
	L1Latency  int // hit latency in cycles
	L1MSHRs    int // outstanding L1 misses per core (flow control)

	// Shared L2, sliced across memory partitions.
	NumPartitions  int // paper: 8 channels
	L2BytesPerPart int // paper: 128 KB
	L2Assoc        int
	L2Latency      int
	ICNTLatency    int // interconnect one-way latency
	DRAMLatency    int
	DRAMBusy       int // channel occupancy per access (bandwidth model)

	PageShift uint // 12 for 4 KB pages, 21 for 2 MB pages

	MMU   MMU
	Sched Scheduler
	TBC   TBC
}

// Key returns a canonical identity string for the whole machine: every
// field of Hardware and its sub-structs contributes, field by field, so two
// configurations share a key exactly when they would simulate identically.
// The experiment pipeline dedupes and caches runs by this key; unlike the
// fmt %+v formatting it replaced, it cannot silently alias configs when
// fields are added or reordered (a reflection test enumerates the struct
// and fails if a new field does not change the key).
func (h Hardware) Key() string {
	return fmt.Sprintf("hw:cores=%d,wpc=%d,ww=%d,iw=%d,l1=%d/%d/%d/%d/%d,parts=%d,l2=%d/%d/%d,icnt=%d,dram=%d/%d,pshift=%d|%s|%s|%s",
		h.NumCores, h.WarpsPerCore, h.WarpWidth, h.IssueWidth,
		h.L1Bytes, h.L1LineSize, h.L1Assoc, h.L1Latency, h.L1MSHRs,
		h.NumPartitions, h.L2BytesPerPart, h.L2Assoc, h.L2Latency,
		h.ICNTLatency, h.DRAMLatency, h.DRAMBusy, h.PageShift,
		h.MMU.Key(), h.Sched.Key(), h.TBC.Key())
}

// IssuePeriod returns the cycles one warp instruction occupies the issue
// stage: WarpWidth lanes drained through an IssueWidth-wide pipeline.
func (h *Hardware) IssuePeriod() int {
	p := h.WarpWidth / h.IssueWidth
	if p < 1 {
		p = 1
	}
	return p
}

// FieldError reports one invalid configuration field by its dotted path
// (e.g. "MMU.Entries"), so callers can point at the exact knob instead of
// parsing a message. Validate returns a *FieldError for every failure;
// retrieve it with errors.As.
type FieldError struct {
	Field string // dotted field path within Hardware
	Value any    // the rejected value
	Msg   string // what a valid value looks like
}

// Error implements error.
func (e *FieldError) Error() string {
	return fmt.Sprintf("config: %s = %v: %s", e.Field, e.Value, e.Msg)
}

// badField builds the standard validation failure.
func badField(field string, value any, msg string) error {
	return &FieldError{Field: field, Value: value, Msg: msg}
}

// ccwsFamily reports whether the policy keeps CCWS locality state.
func (p SchedulerPolicy) ccwsFamily() bool {
	return p == SchedCCWS || p == SchedTACCWS || p == SchedTCWS
}

// Validate reports configuration errors early, before any simulator state is
// built. Every failure is a *FieldError naming the offending field.
func (h *Hardware) Validate() error {
	switch {
	case h.NumCores < 1:
		return badField("NumCores", h.NumCores, "must be >= 1")
	case h.WarpsPerCore < 1:
		return badField("WarpsPerCore", h.WarpsPerCore, "must be >= 1")
	case h.WarpWidth < 1 || h.WarpWidth > 64:
		return badField("WarpWidth", h.WarpWidth, "must be in 1..64")
	case h.IssueWidth < 1:
		return badField("IssueWidth", h.IssueWidth, "must be >= 1")
	case h.L1LineSize < 1 || h.L1LineSize&(h.L1LineSize-1) != 0:
		return badField("L1LineSize", h.L1LineSize, "must be a power of two")
	case h.L1Assoc < 1:
		return badField("L1Assoc", h.L1Assoc, "must be >= 1")
	case h.L1Bytes%(h.L1LineSize*h.L1Assoc) != 0:
		return badField("L1Bytes", h.L1Bytes, fmt.Sprintf("must be a multiple of L1LineSize*L1Assoc (%d)", h.L1LineSize*h.L1Assoc))
	case h.NumPartitions < 1:
		return badField("NumPartitions", h.NumPartitions, "must be >= 1")
	case h.L2Assoc < 1:
		return badField("L2Assoc", h.L2Assoc, "must be >= 1")
	case h.L2BytesPerPart%(h.L1LineSize*h.L2Assoc) != 0:
		return badField("L2BytesPerPart", h.L2BytesPerPart, fmt.Sprintf("must be a multiple of L1LineSize*L2Assoc (%d)", h.L1LineSize*h.L2Assoc))
	case h.ICNTLatency < 0:
		return badField("ICNTLatency", h.ICNTLatency, "must be >= 0")
	case h.DRAMLatency < 0:
		return badField("DRAMLatency", h.DRAMLatency, "must be >= 0")
	case h.DRAMBusy < 1:
		return badField("DRAMBusy", h.DRAMBusy, "must be >= 1 (channel occupancy per access)")
	case h.PageShift != 12 && h.PageShift != 21:
		return badField("PageShift", h.PageShift, "must be 12 (4 KB) or 21 (2 MB)")
	}
	if h.MMU.Enabled {
		m := &h.MMU
		switch {
		case m.Assoc < 1:
			return badField("MMU.Assoc", m.Assoc, "must be >= 1 when the MMU is enabled")
		case m.Entries < m.Assoc || m.Entries%m.Assoc != 0:
			return badField("MMU.Entries", m.Entries, fmt.Sprintf("must be a positive multiple of MMU.Assoc (%d)", m.Assoc))
		case m.Ports < 1:
			return badField("MMU.Ports", m.Ports, "must be >= 1")
		case m.NumPTWs < 1:
			return badField("MMU.NumPTWs", m.NumPTWs, "must be >= 1")
		case m.MSHRs < 1:
			return badField("MMU.MSHRs", m.MSHRs, "must be >= 1")
		case m.SharedTLBEntries < 0:
			return badField("MMU.SharedTLBEntries", m.SharedTLBEntries, "must be >= 0 (0 disables the shared tier)")
		case m.PWCEntries < 0:
			return badField("MMU.PWCEntries", m.PWCEntries, "must be >= 0 (0 disables the page walk cache)")
		case m.SoftwareWalks && m.SoftwareWalkOverhead < 0:
			return badField("MMU.SoftwareWalkOverhead", m.SoftwareWalkOverhead, "must be >= 0")
		}
	}
	s := &h.Sched
	if s.Policy > SchedTCWS {
		return badField("Sched.Policy", s.Policy, "unknown scheduler policy")
	}
	if s.Policy.ccwsFamily() {
		switch {
		case s.VTAEntriesPerWarp < 1:
			return badField("Sched.VTAEntriesPerWarp", s.VTAEntriesPerWarp, "must be >= 1 for CCWS-family schedulers")
		case s.VTAAssoc < 1:
			// Entries below the associativity are legal: the VTA clamps its
			// geometry (paper sweeps 2..16 entries against 8-way arrays).
			return badField("Sched.VTAAssoc", s.VTAAssoc, "must be >= 1 for CCWS-family schedulers")
		case s.ActivePool < 1:
			return badField("Sched.ActivePool", s.ActivePool, "must be >= 1 for CCWS-family schedulers")
		case s.DecayPeriod < 0:
			return badField("Sched.DecayPeriod", s.DecayPeriod, "must be >= 0 (0 disables decay)")
		case s.TLBMissWeight < 1:
			return badField("Sched.TLBMissWeight", s.TLBMissWeight, "must be >= 1 (1 disables TLB-aware weighting)")
		}
	}
	t := &h.TBC
	if t.Mode > DivTLBTBC {
		return badField("TBC.Mode", t.Mode, "unknown divergence mode")
	}
	if t.Mode == DivTLBTBC {
		switch {
		case t.CPMBits < 1 || t.CPMBits > 8:
			return badField("TBC.CPMBits", t.CPMBits, "must be in 1..8 for TLB-aware TBC")
		case t.CPMFlushPeriod < 1:
			return badField("TBC.CPMFlushPeriod", t.CPMFlushPeriod, "must be >= 1 for TLB-aware TBC")
		case t.CPMHistory < 1:
			return badField("TBC.CPMHistory", t.CPMHistory, "must be >= 1 for TLB-aware TBC")
		}
	}
	return nil
}

// Baseline returns the paper's section 5.2 machine: 30 SIMT cores, 32-thread
// warps, issue width 8, 32 KB L1 with 128 B lines, 8 memory partitions with
// 128 KB L2 each — with no TLB (the baseline every speedup is normalised to).
func Baseline() Hardware {
	return Hardware{
		NumCores:     30,
		WarpsPerCore: 48,
		WarpWidth:    32,
		IssueWidth:   8,

		L1Bytes:    32 << 10,
		L1LineSize: 128,
		L1Assoc:    8,
		L1Latency:  1,
		L1MSHRs:    32,

		NumPartitions:  8,
		L2BytesPerPart: 128 << 10,
		L2Assoc:        8,
		L2Latency:      20,
		ICNTLatency:    10,
		DRAMLatency:    200,
		DRAMBusy:       8,

		PageShift: 12,

		MMU: MMU{Enabled: false},
		Sched: Scheduler{
			Policy:            SchedLRR,
			VTAEntriesPerWarp: 16,
			VTAAssoc:          8,
			LLSCutoff:         64,
			ActivePool:        8,
			DecayPeriod:       4096,
			TLBMissWeight:     1,
		},
		TBC: TBC{
			Mode:           DivStack,
			CPMBits:        3,
			CPMFlushPeriod: 500,
			CPMHistory:     2,
		},
	}
}

// NaiveMMU is the strawman CPU-style design of section 6.2: 128-entry,
// 4-way TLB with one walker, fully blocking, no walk scheduling. ports is
// 3 in figure 2 and 4 thereafter.
func NaiveMMU(ports int) MMU {
	return MMU{
		Enabled:         true,
		Entries:         128,
		Assoc:           4,
		Ports:           ports,
		NumPTWs:         1,
		MSHRs:           32,
		WalkConcurrency: 4,
	}
}

// AugmentedMMU is the paper's recommended design: naive 128-entry 4-port
// TLB plus hits-under-miss, cache overlap, and PTW scheduling, still with
// a single walker (end of section 6.3).
func AugmentedMMU() MMU {
	m := NaiveMMU(4)
	m.HitsUnderMiss = true
	m.CacheOverlap = true
	m.PTWSched = true
	return m
}

// SmallTest returns a scaled-down machine for fast unit tests: 4 cores,
// 8 warps each, small caches. Policy knobs mirror Baseline.
func SmallTest() Hardware {
	h := Baseline()
	h.NumCores = 4
	h.WarpsPerCore = 8
	h.L1Bytes = 8 << 10
	h.L2BytesPerPart = 32 << 10
	h.NumPartitions = 2
	return h
}
