package config

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func TestBaselineMatchesPaperMethodology(t *testing.T) {
	h := Baseline()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	// Section 5.2: 30 SIMT cores, 32-thread warps, pipeline width 8,
	// 32 KB L1 with 128 B lines, 8 channels with 128 KB L2 each.
	if h.NumCores != 30 || h.WarpWidth != 32 || h.IssueWidth != 8 {
		t.Fatalf("core geometry: %+v", h)
	}
	if h.L1Bytes != 32<<10 || h.L1LineSize != 128 {
		t.Fatalf("L1 geometry: %+v", h)
	}
	if h.NumPartitions != 8 || h.L2BytesPerPart != 128<<10 {
		t.Fatalf("L2 geometry: %+v", h)
	}
	if h.MMU.Enabled {
		t.Fatal("baseline must be the no-TLB machine")
	}
}

func TestNaiveMMUMatchesStrawman(t *testing.T) {
	m := NaiveMMU(3)
	// Section 6.2: 128-entry TLB, 1 PTW, blocking, no PTW scheduling.
	if m.Entries != 128 || m.Ports != 3 || m.NumPTWs != 1 || m.MSHRs != 32 {
		t.Fatalf("naive = %+v", m)
	}
	if m.HitsUnderMiss || m.CacheOverlap || m.PTWSched {
		t.Fatal("naive MMU has augmentations enabled")
	}
}

func TestAugmentedMMU(t *testing.T) {
	m := AugmentedMMU()
	if !m.HitsUnderMiss || !m.CacheOverlap || !m.PTWSched {
		t.Fatalf("augmented = %+v", m)
	}
	if m.NumPTWs != 1 {
		t.Fatal("the paper's recommended design uses a single walker")
	}
}

func TestIdealFillsDefaults(t *testing.T) {
	m := MMU{}.Ideal()
	if m.Entries != 512 || m.Ports != 32 || !m.IdealLatency {
		t.Fatalf("ideal = %+v", m)
	}
	if m.Assoc == 0 || m.NumPTWs == 0 || m.MSHRs == 0 {
		t.Fatal("ideal left zero fields")
	}
	// Idealising an existing config keeps its structural fields.
	n := NaiveMMU(4)
	n.Assoc = 8
	if got := n.Ideal(); got.Assoc != 8 {
		t.Fatal("Ideal clobbered Assoc")
	}
}

func TestAccessPenaltyTiers(t *testing.T) {
	for _, c := range []struct {
		entries, want int
	}{{64, 0}, {128, 0}, {256, 4}, {512, 8}} {
		m := NaiveMMU(4)
		m.Entries = c.entries
		if got := m.AccessPenalty(); got != c.want {
			t.Errorf("%d entries: %d, want %d", c.entries, got, c.want)
		}
	}
	if (MMU{}).AccessPenalty() != 0 {
		t.Error("disabled MMU has penalty")
	}
}

// TestValidateFieldErrors pins the typed-validation contract: every failure
// is a *FieldError naming the exact offending field.
func TestValidateFieldErrors(t *testing.T) {
	cases := []struct {
		field string
		mut   func(*Hardware)
	}{
		{"NumCores", func(h *Hardware) { h.NumCores = 0 }},
		{"WarpsPerCore", func(h *Hardware) { h.WarpsPerCore = -1 }},
		{"WarpWidth", func(h *Hardware) { h.WarpWidth = 65 }},
		{"IssueWidth", func(h *Hardware) { h.IssueWidth = 0 }},
		{"L1LineSize", func(h *Hardware) { h.L1LineSize = 96 }},
		{"L1Assoc", func(h *Hardware) { h.L1Assoc = 0 }},
		{"L1Bytes", func(h *Hardware) { h.L1Bytes = 1000 }},
		{"NumPartitions", func(h *Hardware) { h.NumPartitions = 0 }},
		{"L2Assoc", func(h *Hardware) { h.L2Assoc = 0 }},
		{"L2BytesPerPart", func(h *Hardware) { h.L2BytesPerPart = 1000 }},
		{"ICNTLatency", func(h *Hardware) { h.ICNTLatency = -1 }},
		{"DRAMLatency", func(h *Hardware) { h.DRAMLatency = -1 }},
		{"DRAMBusy", func(h *Hardware) { h.DRAMBusy = 0 }},
		{"PageShift", func(h *Hardware) { h.PageShift = 13 }},
		{"MMU.Assoc", func(h *Hardware) { m := NaiveMMU(4); m.Assoc = 0; h.MMU = m }},
		{"MMU.Entries", func(h *Hardware) { m := NaiveMMU(4); m.Entries = 130; h.MMU = m }},
		{"MMU.Ports", func(h *Hardware) { h.MMU = NaiveMMU(0) }},
		{"MMU.NumPTWs", func(h *Hardware) { m := NaiveMMU(4); m.NumPTWs = 0; h.MMU = m }},
		{"MMU.MSHRs", func(h *Hardware) { m := NaiveMMU(4); m.MSHRs = 0; h.MMU = m }},
		{"MMU.SharedTLBEntries", func(h *Hardware) { m := NaiveMMU(4); m.SharedTLBEntries = -1; h.MMU = m }},
		{"MMU.PWCEntries", func(h *Hardware) { m := NaiveMMU(4); m.PWCEntries = -1; h.MMU = m }},
		{"MMU.SoftwareWalkOverhead", func(h *Hardware) {
			m := NaiveMMU(4)
			m.SoftwareWalks = true
			m.SoftwareWalkOverhead = -1
			h.MMU = m
		}},
		{"Sched.Policy", func(h *Hardware) { h.Sched.Policy = SchedulerPolicy(99) }},
		{"Sched.VTAEntriesPerWarp", func(h *Hardware) {
			h.Sched.Policy = SchedCCWS
			h.Sched.VTAEntriesPerWarp = 0
		}},
		{"Sched.VTAAssoc", func(h *Hardware) {
			h.Sched.Policy = SchedCCWS
			h.Sched.VTAAssoc = 0
		}},
		{"Sched.ActivePool", func(h *Hardware) {
			h.Sched.Policy = SchedTCWS
			h.Sched.ActivePool = 0
		}},
		{"Sched.DecayPeriod", func(h *Hardware) {
			h.Sched.Policy = SchedCCWS
			h.Sched.DecayPeriod = -1
		}},
		{"Sched.TLBMissWeight", func(h *Hardware) {
			h.Sched.Policy = SchedTACCWS
			h.Sched.TLBMissWeight = 0
		}},
		{"TBC.Mode", func(h *Hardware) { h.TBC.Mode = DivergenceMode(9) }},
		{"TBC.CPMBits", func(h *Hardware) {
			h.TBC.Mode = DivTLBTBC
			h.TBC.CPMBits = 0
		}},
		{"TBC.CPMFlushPeriod", func(h *Hardware) {
			h.TBC.Mode = DivTLBTBC
			h.TBC.CPMFlushPeriod = 0
		}},
		{"TBC.CPMHistory", func(h *Hardware) {
			h.TBC.Mode = DivTLBTBC
			h.TBC.CPMHistory = 0
		}},
	}
	for _, c := range cases {
		h := Baseline()
		c.mut(&h)
		err := h.Validate()
		if err == nil {
			t.Errorf("%s: bad config validated", c.field)
			continue
		}
		fe, ok := err.(*FieldError)
		if !ok {
			t.Errorf("%s: error is %T, not *FieldError: %v", c.field, err, err)
			continue
		}
		if fe.Field != c.field {
			t.Errorf("wrong field: got %q want %q (%v)", fe.Field, c.field, err)
		}
		if fe.Msg == "" || !strings.Contains(err.Error(), fe.Field) {
			t.Errorf("%s: unhelpful message %q", c.field, err.Error())
		}
	}
}

// TestValidateAcceptsDisabledMMUModes pins a trap the per-mode rules must
// not fall into: DivTLBTBC is legal with the MMU disabled (the CPM then
// never observes TLB hits but the pipeline still compacts), which the
// execution tests rely on.
func TestValidateAcceptsDisabledMMUModes(t *testing.T) {
	h := SmallTest()
	h.TBC.Mode = DivTLBTBC
	if err := h.Validate(); err != nil {
		t.Fatalf("DivTLBTBC without MMU rejected: %v", err)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	bad := []func(*Hardware){
		func(h *Hardware) { h.NumCores = 0 },
		func(h *Hardware) { h.WarpWidth = 0 },
		func(h *Hardware) { h.WarpsPerCore = 0 },
		func(h *Hardware) { h.L1Bytes = 1000 },
		func(h *Hardware) { h.PageShift = 13 },
		func(h *Hardware) { h.MMU = NaiveMMU(0) },
		func(h *Hardware) { m := NaiveMMU(4); m.Assoc = 0; h.MMU = m },
	}
	for i, mut := range bad {
		h := Baseline()
		mut(&h)
		if err := h.Validate(); err == nil {
			t.Errorf("case %d validated", i)
		}
	}
}

func TestStringers(t *testing.T) {
	for _, p := range []SchedulerPolicy{SchedLRR, SchedGTO, SchedCCWS, SchedTACCWS, SchedTCWS} {
		if strings.Contains(p.String(), "sched(") {
			t.Errorf("policy %d has no name", p)
		}
	}
	for _, d := range []DivergenceMode{DivStack, DivTBC, DivTLBTBC} {
		if strings.Contains(d.String(), "div(") {
			t.Errorf("mode %d has no name", d)
		}
	}
}

// perturb mutates one field so it differs from its current value and
// returns a short description of the change.
func perturb(v reflect.Value) string {
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(!v.Bool())
		return "flipped"
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(v.Int() + 1)
		return "+1"
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(v.Uint() + 1)
		return "+1"
	case reflect.Slice:
		v.Set(reflect.Append(v, reflect.New(v.Type().Elem()).Elem()))
		return "appended"
	default:
		return ""
	}
}

// walkFields visits every leaf field of a struct value, recursing into
// embedded struct fields, and calls fn with a dotted path.
func walkFields(prefix string, v reflect.Value, fn func(path string, f reflect.Value)) {
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := v.Field(i)
		path := prefix + t.Field(i).Name
		if f.Kind() == reflect.Struct {
			walkFields(path+".", f, fn)
			continue
		}
		fn(path, f)
	}
}

// TestHardwareKeyCoversEveryField perturbs every field of Hardware —
// including every MMU, Scheduler, and TBC sub-field — one at a time and
// requires the canonical key to change. This is the guard the old
// fmt %+v cache key lacked: adding a field without folding it into Key()
// fails here instead of silently aliasing distinct configurations.
func TestHardwareKeyCoversEveryField(t *testing.T) {
	base := Baseline()
	baseKey := base.Key()
	seen := map[string]string{baseKey: "baseline"}
	n := 0
	walkFields("", reflect.ValueOf(&base).Elem(), func(path string, f reflect.Value) {
		n++
		cfg := Baseline()
		var fv reflect.Value
		walkFields("", reflect.ValueOf(&cfg).Elem(), func(p string, v reflect.Value) {
			if p == path {
				fv = v
			}
		})
		how := perturb(fv)
		if how == "" {
			t.Fatalf("field %s: unsupported kind %s — extend perturb", path, fv.Kind())
		}
		k := cfg.Key()
		if k == baseKey {
			t.Errorf("field %s (%s) does not affect Hardware.Key", path, how)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("field %s aliases %s under Hardware.Key", path, prev)
		}
		seen[k] = path
	})
	if n < 30 {
		t.Fatalf("walked only %d fields; reflection walk is broken", n)
	}
}

// TestKeyDistinguishesPresets pins the concrete cases the experiment cache
// relies on: MMU, scheduler, TBC, and cache-geometry changes must all
// produce distinct keys.
func TestKeyDistinguishesPresets(t *testing.T) {
	mk := func(mut func(*Hardware)) string {
		h := Baseline()
		mut(&h)
		return h.Key()
	}
	keys := map[string]string{}
	for name, mut := range map[string]func(*Hardware){
		"baseline":   func(h *Hardware) {},
		"naive3":     func(h *Hardware) { h.MMU = NaiveMMU(3) },
		"naive4":     func(h *Hardware) { h.MMU = NaiveMMU(4) },
		"augmented":  func(h *Hardware) { h.MMU = AugmentedMMU() },
		"ideal":      func(h *Hardware) { h.MMU = MMU{}.Ideal() },
		"ccws":       func(h *Hardware) { h.Sched.Policy = SchedCCWS },
		"tcws-lru":   func(h *Hardware) { h.Sched.Policy = SchedTCWS; h.Sched.LRUDepthWeights = []int{1, 2, 4, 8} },
		"tbc":        func(h *Hardware) { h.TBC.Mode = DivTBC },
		"tlbtbc1bit": func(h *Hardware) { h.TBC.Mode = DivTLBTBC; h.TBC.CPMBits = 1 },
		"bigger-l1":  func(h *Hardware) { h.L1Bytes = 64 << 10 },
		"2m-pages":   func(h *Hardware) { h.PageShift = 21 },
	} {
		k := mk(mut)
		if prev, dup := keys[k]; dup {
			t.Errorf("%s and %s share key %q", name, prev, k)
		}
		keys[k] = name
	}
}

// TestKeyIsPure ensures Key has no hidden state: same config, same string.
func TestKeyIsPure(t *testing.T) {
	a, b := Baseline(), Baseline()
	if a.Key() != b.Key() {
		t.Fatalf("equal configs disagree:\n%s\n%s", a.Key(), b.Key())
	}
	if fmt.Sprint(a.Key()) == "" {
		t.Fatal("empty key")
	}
}

func TestSmallTestValid(t *testing.T) {
	h := SmallTest()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.NumCores >= Baseline().NumCores {
		t.Fatal("SmallTest is not smaller than Baseline")
	}
}
