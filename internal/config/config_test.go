package config

import (
	"strings"
	"testing"
)

func TestBaselineMatchesPaperMethodology(t *testing.T) {
	h := Baseline()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	// Section 5.2: 30 SIMT cores, 32-thread warps, pipeline width 8,
	// 32 KB L1 with 128 B lines, 8 channels with 128 KB L2 each.
	if h.NumCores != 30 || h.WarpWidth != 32 || h.IssueWidth != 8 {
		t.Fatalf("core geometry: %+v", h)
	}
	if h.L1Bytes != 32<<10 || h.L1LineSize != 128 {
		t.Fatalf("L1 geometry: %+v", h)
	}
	if h.NumPartitions != 8 || h.L2BytesPerPart != 128<<10 {
		t.Fatalf("L2 geometry: %+v", h)
	}
	if h.MMU.Enabled {
		t.Fatal("baseline must be the no-TLB machine")
	}
}

func TestNaiveMMUMatchesStrawman(t *testing.T) {
	m := NaiveMMU(3)
	// Section 6.2: 128-entry TLB, 1 PTW, blocking, no PTW scheduling.
	if m.Entries != 128 || m.Ports != 3 || m.NumPTWs != 1 || m.MSHRs != 32 {
		t.Fatalf("naive = %+v", m)
	}
	if m.HitsUnderMiss || m.CacheOverlap || m.PTWSched {
		t.Fatal("naive MMU has augmentations enabled")
	}
}

func TestAugmentedMMU(t *testing.T) {
	m := AugmentedMMU()
	if !m.HitsUnderMiss || !m.CacheOverlap || !m.PTWSched {
		t.Fatalf("augmented = %+v", m)
	}
	if m.NumPTWs != 1 {
		t.Fatal("the paper's recommended design uses a single walker")
	}
}

func TestIdealFillsDefaults(t *testing.T) {
	m := MMU{}.Ideal()
	if m.Entries != 512 || m.Ports != 32 || !m.IdealLatency {
		t.Fatalf("ideal = %+v", m)
	}
	if m.Assoc == 0 || m.NumPTWs == 0 || m.MSHRs == 0 {
		t.Fatal("ideal left zero fields")
	}
	// Idealising an existing config keeps its structural fields.
	n := NaiveMMU(4)
	n.Assoc = 8
	if got := n.Ideal(); got.Assoc != 8 {
		t.Fatal("Ideal clobbered Assoc")
	}
}

func TestAccessPenaltyTiers(t *testing.T) {
	for _, c := range []struct {
		entries, want int
	}{{64, 0}, {128, 0}, {256, 4}, {512, 8}} {
		m := NaiveMMU(4)
		m.Entries = c.entries
		if got := m.AccessPenalty(); got != c.want {
			t.Errorf("%d entries: %d, want %d", c.entries, got, c.want)
		}
	}
	if (MMU{}).AccessPenalty() != 0 {
		t.Error("disabled MMU has penalty")
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	bad := []func(*Hardware){
		func(h *Hardware) { h.NumCores = 0 },
		func(h *Hardware) { h.WarpWidth = 0 },
		func(h *Hardware) { h.WarpsPerCore = 0 },
		func(h *Hardware) { h.L1Bytes = 1000 },
		func(h *Hardware) { h.PageShift = 13 },
		func(h *Hardware) { h.MMU = NaiveMMU(0) },
		func(h *Hardware) { m := NaiveMMU(4); m.Assoc = 0; h.MMU = m },
	}
	for i, mut := range bad {
		h := Baseline()
		mut(&h)
		if err := h.Validate(); err == nil {
			t.Errorf("case %d validated", i)
		}
	}
}

func TestStringers(t *testing.T) {
	for _, p := range []SchedulerPolicy{SchedLRR, SchedGTO, SchedCCWS, SchedTACCWS, SchedTCWS} {
		if strings.Contains(p.String(), "sched(") {
			t.Errorf("policy %d has no name", p)
		}
	}
	for _, d := range []DivergenceMode{DivStack, DivTBC, DivTLBTBC} {
		if strings.Contains(d.String(), "div(") {
			t.Errorf("mode %d has no name", d)
		}
	}
}

func TestSmallTestValid(t *testing.T) {
	h := SmallTest()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.NumCores >= Baseline().NumCores {
		t.Fatal("SmallTest is not smaller than Baseline")
	}
}
