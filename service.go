// Campaign and service re-exports: the declarative campaign format and
// the job-server client, surfaced at the root so programs embedding the
// simulator never import internal packages. A campaign document is the
// unit of submission (gpusim/experiments run it locally, gpusimd runs it
// as a job); Result is the one schema-versioned envelope every stored
// result, /v1 response, and `gpusim -json` object shares.
package gpummu

import (
	"gpummu/internal/campaign"
	"gpummu/internal/service"
)

// Campaign is one declarative experiment campaign (machine, workload set,
// figures, sweep axes, run options). See DESIGN.md section 13 for the
// field-by-field reference.
type Campaign = campaign.Campaign

// ParseCampaign parses a YAML or JSON campaign document, applies the
// documented defaults, and validates it. The returned campaign is
// normalised: Emit renders it in canonical form.
func ParseCampaign(data []byte) (*Campaign, error) { return campaign.Parse(data) }

// LoadCampaign reads, parses, validates and normalises the campaign file
// at path.
func LoadCampaign(path string) (*Campaign, error) { return campaign.Load(path) }

// ResultSchema is the version tag carried by every Result envelope.
const ResultSchema = service.ResultSchema

// Result is the schema-versioned envelope for one simulation outcome: the
// durable store persists it, the /v1 endpoints serve it, and `gpusim
// -json` prints it. Two Results with equal Keys describe byte-identical
// simulations.
type Result = service.Result

// ResultSummary is a Result's precomputed headline-metric block.
type ResultSummary = service.Summary

// Job is one entry in a gpusimd run manifest: a submitted campaign and
// its execution state (pending/running/done/failed/timeout), including
// the dedup counters (Simulated vs FromStore vs Coalesced).
type Job = service.Job

// QueueFullError is the typed rejection a full gpusimd job queue returns;
// its RetryAfter carries the server's backoff hint. Detect it with
// errors.As.
type QueueFullError = service.QueueFullError

// SubmitRequest is the POST /v1/jobs body: a campaign document or
// job-shaped (workloads, machine) fields.
type SubmitRequest = service.SubmitRequest

// Client talks to a gpusimd job server over the /v1 API.
type Client = service.Client

// NewClient returns a client for the gpusimd server at base, e.g.
// "http://127.0.0.1:8080".
func NewClient(base string) *Client { return service.NewClient(base) }
