package gpummu

// Option-misuse coverage for the Run(ctx, ...RunOption) entry point: every
// rejected combination must fail with a typed error a caller can match —
// *config.FieldError for bad configurations, *obs.AbortError (unwrapping
// to the context error) for cancelled runs — never a silent fallback. Plus
// the Client ↔ Server round trip over httptest, including the dedup
// counters a resubmitted identical job must report.

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"gpummu/internal/config"
	"gpummu/internal/service"
)

// TestRunRejectsInvalidConfig: a broken hardware configuration must
// surface as a *config.FieldError naming the field, before anything
// simulates.
func TestRunRejectsInvalidConfig(t *testing.T) {
	cfg := SmallConfig()
	cfg.NumCores = 0
	_, err := Run(context.Background(), WithConfig(cfg), WithWorkload("pointerchase", SizeTiny))
	if err == nil {
		t.Fatal("invalid config ran")
	}
	var fe *config.FieldError
	if !errors.As(err, &fe) {
		t.Fatalf("want *config.FieldError, got %T: %v", err, err)
	}
	if fe.Field == "" {
		t.Fatalf("FieldError names no field: %v", fe)
	}
}

// TestRunRejectsNoSource: Run without any workload source must fail
// loudly, not default to something.
func TestRunRejectsNoSource(t *testing.T) {
	if _, err := Run(context.Background(), WithConfig(SmallConfig())); err == nil {
		t.Fatal("sourceless run succeeded")
	}
}

// TestRunRejectsConflictingSources: WithWorkload and WithKernel are
// mutually exclusive.
func TestRunRejectsConflictingSources(t *testing.T) {
	as := NewAddressSpace(12)
	w, err := BuildWorkload("pointerchase", SizeTiny, 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(context.Background(),
		WithConfig(SmallConfig()),
		WithWorkload("pointerchase", SizeTiny),
		WithKernel(as, w.Launch))
	if err == nil {
		t.Fatal("conflicting sources ran")
	}
}

// TestRunRejectsUnknownWorkload: an unregistered name must fail the build
// step with the registry's error.
func TestRunRejectsUnknownWorkload(t *testing.T) {
	if _, err := Run(context.Background(), WithWorkload("no-such-workload", SizeTiny)); err == nil {
		t.Fatal("unknown workload ran")
	}
}

// TestRunCancelledContext: a cancelled context aborts the run with an
// *AbortError that unwraps to context.Canceled (the poll shares the ~16k
// cycle prune cadence, so the workload must outlive one window).
func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, WithConfig(SmallConfig()), WithWorkload("bfs", SizeSmall))
	if err == nil {
		t.Fatal("cancelled run succeeded")
	}
	var ae *AbortError
	if !errors.As(err, &ae) {
		t.Fatalf("want *AbortError, got %T: %v", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("abort does not unwrap to context.Canceled: %v", err)
	}
}

// TestClientServerRoundTrip drives the exported Client against an
// in-memory service.Server over httptest: submit an ad-hoc job, wait for
// it, fetch its report and stored results, then resubmit the identical
// job and require the dedup counters to prove zero new simulations.
func TestClientServerRoundTrip(t *testing.T) {
	srv, err := service.NewServer(service.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	c := NewClient(ts.URL)
	req := SubmitRequest{Workloads: []string{"pointerchase"}, Size: "tiny", Machine: "small"}
	job, err := c.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	job, err = c.Wait(ctx, job.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != service.StateDone {
		t.Fatalf("job %s finished %s: %s", job.ID, job.State, job.Error)
	}
	if job.Total != 1 || job.Simulated != 1 || job.FromStore != 0 {
		t.Fatalf("first run counters = total %d simulated %d fromStore %d",
			job.Total, job.Simulated, job.FromStore)
	}
	report, err := c.Report(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(report) == 0 {
		t.Fatal("empty report")
	}
	results, err := c.Results("pointerchase")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Schema != ResultSchema {
		t.Fatalf("results = %+v", results)
	}
	if _, err := c.Result(results[0].Key); err != nil {
		t.Fatalf("exact-key fetch: %v", err)
	}
	best, _, err := c.Best("pointerchase", "cycles")
	if err != nil {
		t.Fatal(err)
	}
	if best.Key != results[0].Key {
		t.Fatalf("best = %s, want %s", best.Key, results[0].Key)
	}

	// The identical resubmission must be served entirely from the store:
	// the manifest's dedup counters are the proof nothing re-simulated.
	job2, err := c.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	job2, err = c.Wait(ctx, job2.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if job2.State != service.StateDone {
		t.Fatalf("resubmitted job finished %s: %s", job2.State, job2.Error)
	}
	if job2.Simulated != 0 || job2.FromStore != 1 {
		t.Fatalf("resubmit counters = simulated %d fromStore %d, want 0/1",
			job2.Simulated, job2.FromStore)
	}
}
