package gpummu

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"gpummu/internal/config"
	"gpummu/internal/kernels"
)

// TestRunWithObservability drives the full option surface in one run and
// cross-checks every artefact against the report.
func TestRunWithObservability(t *testing.T) {
	cfg := SmallConfig()
	cfg.MMU = AugmentedMMU()
	var trace bytes.Buffer
	smp := NewSampler(100, 0)
	reg := NewRegistry()
	var progressCalls int

	rep, err := Run(context.Background(),
		WithConfig(cfg),
		WithWorkload("bfs", SizeTiny),
		WithSeed(7),
		WithWorkers(2),
		WithMaxCycles(50_000_000),
		WithWatchdog(10_000_000),
		WithSampler(smp),
		WithTrace(&trace),
		WithMetrics(reg),
		WithProgress(func(Progress) { progressCalls++ }, 1<<14),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified {
		t.Error("functional check did not run")
	}

	if len(rep.Series) == 0 {
		t.Fatal("no samples recorded")
	}
	last := rep.Series[len(rep.Series)-1]
	if last.Cycle != rep.Cycles || last.Instructions != rep.Instructions.Value() {
		t.Errorf("final sample (%d cyc, %d instr) != report (%d cyc, %d instr)",
			last.Cycle, last.Instructions, rep.Cycles, rep.Instructions.Value())
	}
	if last.TLBMisses != rep.TLBMisses.Value() || last.Walks != rep.Walks.Value() {
		t.Errorf("final sample TLB/walk columns diverge from report")
	}

	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid Chrome trace JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("trace is empty")
	}

	if rep.Metrics != reg || reg.Len() == 0 {
		t.Fatal("metrics registry not collected")
	}
	var perCore uint64
	for i := 0; i < cfg.NumCores; i++ {
		if m, ok := reg.Lookup("core.instructions{core=" + itoa(i) + "}"); ok {
			perCore += m.Value()
		}
	}
	if perCore != rep.Instructions.Value() {
		t.Errorf("per-core metric sum %d != report instructions %d", perCore, rep.Instructions.Value())
	}
}

func itoa(i int) string {
	return string(rune('0' + i)) // cores 0..9 in SmallConfig
}

// spinKernel builds an infinite loop for abort-path tests.
func spinKernel(t *testing.T) (*Config, *kernels.Launch) {
	t.Helper()
	b := kernels.NewBuilder("spin")
	b.Label("top")
	b.Jmp("top")
	b.Exit()
	cfg := SmallConfig()
	return &cfg, &kernels.Launch{Program: b.MustBuild(), Grid: 1, BlockDim: 32}
}

// TestRunTypedAborts checks each guard surfaces its sentinel through the
// public API.
func TestRunTypedAborts(t *testing.T) {
	t.Run("watchdog", func(t *testing.T) {
		cfg, l := spinKernel(t)
		_, err := Run(context.Background(), WithConfig(*cfg),
			WithKernel(NewAddressSpace(12), l), WithWatchdog(50_000))
		if !errors.Is(err, ErrLivelock) {
			t.Fatalf("not ErrLivelock: %v", err)
		}
		var ae *AbortError
		if !errors.As(err, &ae) || ae.Dump == "" {
			t.Fatalf("no diagnostic dump: %v", err)
		}
	})
	t.Run("maxcycles", func(t *testing.T) {
		cfg, l := spinKernel(t)
		_, err := Run(context.Background(), WithConfig(*cfg),
			WithKernel(NewAddressSpace(12), l), WithMaxCycles(10_000))
		if !errors.Is(err, ErrMaxCycles) {
			t.Fatalf("not ErrMaxCycles: %v", err)
		}
	})
	t.Run("deadline", func(t *testing.T) {
		cfg, l := spinKernel(t)
		_, err := Run(context.Background(), WithConfig(*cfg),
			WithKernel(NewAddressSpace(12), l), WithDeadline(time.Now().Add(-time.Second)))
		if !errors.Is(err, ErrDeadline) {
			t.Fatalf("not ErrDeadline: %v", err)
		}
	})
	t.Run("context", func(t *testing.T) {
		cfg, l := spinKernel(t)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := Run(ctx, WithConfig(*cfg), WithKernel(NewAddressSpace(12), l))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("not context.Canceled: %v", err)
		}
	})
}

// TestRunKernelWithCheckVerifies pins the fix for the old RunKernel gap:
// kernel runs now flow through the same helper as workload runs, so a
// provided check gates Verified.
func TestRunKernelWithCheckVerifies(t *testing.T) {
	as := NewAddressSpace(12)
	out := as.Malloc(32 * 8)
	b := kernels.NewBuilder("store-tid")
	const rTid, rAddr, rBase kernels.Reg = 0, 1, 2
	b.Special(rTid, kernels.SpecGlobalTID)
	b.ShlImm(rAddr, rTid, 3)
	b.Special(rBase, kernels.SpecParam0)
	b.Add(rAddr, rAddr, rBase)
	b.St(rAddr, 0, rTid, 8)
	b.Exit()
	l := &kernels.Launch{Program: b.MustBuild(), Grid: 1, BlockDim: 32}
	l.Params[0] = out

	checked := false
	rep, err := Run(context.Background(), WithConfig(SmallConfig()), WithKernel(as, l),
		WithCheck(func() error {
			checked = true
			for tid := uint64(0); tid < 32; tid++ {
				if got := as.Read64(out + tid*8); got != tid {
					return fmt.Errorf("out[%d] = %d", tid, got)
				}
			}
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	if !checked || !rep.Verified {
		t.Fatalf("check ran=%v verified=%v", checked, rep.Verified)
	}
}

// TestRunRequiresExactlyOneSource checks the option-validation error.
func TestRunRequiresExactlyOneSource(t *testing.T) {
	if _, err := Run(context.Background(), WithConfig(SmallConfig())); err == nil {
		t.Fatal("no workload source accepted")
	}
	w, err := BuildWorkload("kmeans", SizeTiny, 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), WithConfig(SmallConfig()),
		WithWorkload("bfs", SizeTiny), WithBuilt(w)); err == nil {
		t.Fatal("two workload sources accepted")
	}
}

// TestRunSurfacesFieldErrors checks config validation errors carry the
// typed field identity through the public entry point.
func TestRunSurfacesFieldErrors(t *testing.T) {
	cfg := SmallConfig()
	cfg.MMU = NaiveMMU(0) // zero ports
	_, err := Run(context.Background(), WithConfig(cfg), WithWorkload("bfs", SizeTiny))
	if err == nil {
		t.Fatal("invalid config ran")
	}
	var fe *config.FieldError
	if !errors.As(err, &fe) || fe.Field != "MMU.Ports" {
		t.Fatalf("not a FieldError naming MMU.Ports: %v", err)
	}
}
